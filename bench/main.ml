(* Experiment harness: regenerates every table and measured result of the
   paper's evaluation (Section 7) on scaled synthetic collections.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- table2       # a single experiment
     dune exec bench/main.exe -- --scale 0.5 table1 maintenance

   See EXPERIMENTS.md for the paper-vs-measured record. *)

let experiments : (string * string * (Bench_common.scale -> unit)) list =
  [
    ("selfcheck", "verify all build configurations are exact", Experiments.selfcheck);
    ("table1", "Table 1: collection features", Experiments.table1);
    ("closure", "7.2: closure size, unpartitioned baseline", Experiments.closure_experiment);
    ("table2", "Table 2: build time/size per configuration", Experiments.table2);
    ("preselect", "4.2: center preselection", Experiments.preselect);
    ("weights", "4.3: edge-weight schemes", Experiments.weights);
    ("distance", "5: distance-aware cover", Experiments.distance);
    ("maintenance", "7.3: incremental maintenance", Experiments.maintenance);
    ("inex", "7.2: INEX cover", Experiments.inex_experiment);
    ("flix", "extension: FliX hybrid vs full HOPI", Experiments.flix);
    ("psg-strategies", "ablation: PSG H-bar strategies", Experiments.psg_strategies);
    ("lazy-queue", "ablation: lazy priority queue", Experiments.lazy_queue);
    ("parallel", "4.3: concurrent partition covers", Experiments.parallel);
    ("parallel_build", "domain pool: jobs=1 vs jobs=N, identical covers",
     Experiments.parallel_build);
    ("storage_durability", "atomic save latency, fsync cost, crash recovery",
     Experiments.storage_durability);
    ("query_throughput", "serving: batch throughput, cold vs warm label cache",
     Experiments.query_throughput);
    ("live_maintenance", "serving: zero-downtime generational flips under churn",
     Experiments.live_maintenance);
    ("socket_throughput", "serving: socket front-end, 1 vs K shards",
     Experiments.socket_throughput);
    ("micro", "query-latency micro-benchmarks", Micro.run);
  ]

let run_experiments names scale_factor jobs =
  let scale = Bench_common.scale_of ~jobs scale_factor in
  let todo =
    match names with
    | [] -> experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.find_opt (fun (n', _, _) -> n' = n) experiments with
          | Some e -> Some e
          | None ->
            Fmt.epr "unknown experiment %S; known: %s@." n
              (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
            exit 2)
        names
  in
  Hopi_obs.Log_setup.setup ();
  let t0 = Hopi_util.Timer.start () in
  List.iter (fun (name, _, f) -> Bench_common.with_metrics name (fun () -> f scale)) todo;
  Fmt.pr "@.total bench time: %a@." Hopi_util.Timer.pp_duration
    (Hopi_util.Timer.elapsed_s t0)

open Cmdliner

let names_arg =
  let doc =
    "Experiments to run (default: all). Known: "
    ^ String.concat ", " (List.map (fun (n, _, _) -> n) experiments)
    ^ "."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let scale_arg =
  let doc = "Workload scale factor (1.0 = default laptop scale)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let jobs_arg =
  let doc = "Pool size for experiments that exercise the parallel build." in
  Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Regenerate the HOPI paper's evaluation tables" in
  Cmd.v
    (Cmd.info "hopi-bench" ~doc)
    Term.(const (fun names scale jobs -> run_experiments names scale jobs)
          $ names_arg $ scale_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
