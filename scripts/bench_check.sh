#!/usr/bin/env bash
# Bench regression gate: compare a BENCH_*.json metrics snapshot against a
# committed baseline.
#
#   scripts/bench_check.sh BASELINE.json CURRENT.json [PREFIX]
#
# Only gauges whose name starts with PREFIX (default "bench_") take part —
# those are the series the bench harness publishes on purpose; raw
# hopi_* operational metrics vary too much run to run to gate on.
#
# A series fails when it moves more than BENCH_TOLERANCE_PCT (default 20)
# percent in its bad direction.  Direction is inferred from the name:
# durations and sizes (_ns/_us/_ms/_seconds/_duration/_latency/_bytes)
# regress when they grow, everything else (qps, speedup percentages)
# regresses when it shrinks.  A baseline series missing from the current
# run is a failure; a current series missing from the baseline is only
# reported (new series need a baseline refresh, not a red build).
#
# Exit codes: 0 ok, 1 regression (or baseline series lost), 2 usage /
# no comparable series.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 BASELINE.json CURRENT.json [PREFIX]" >&2
  exit 2
fi

BASELINE=$1 CURRENT=$2 PREFIX=${3:-bench_} \
TOLERANCE=${BENCH_TOLERANCE_PCT:-20} \
python3 - <<'PYEOF'
import json, os, sys

baseline_path = os.environ["BASELINE"]
current_path = os.environ["CURRENT"]
prefix = os.environ["PREFIX"]
tolerance = float(os.environ["TOLERANCE"])

def gauges(path):
    with open(path) as f:
        metrics = json.load(f)["metrics"]
    return {
        name: m["value"]
        for name, m in metrics.items()
        if name.startswith(prefix) and m.get("type") == "gauge"
    }

base = gauges(baseline_path)
cur = gauges(current_path)

if not base:
    print(f"error: no '{prefix}*' gauges in baseline {baseline_path}", file=sys.stderr)
    sys.exit(2)

# higher-is-worse series: durations and sizes
COST_MARKERS = ("_ns", "_us", "_ms", "_seconds", "_duration", "_latency", "_bytes")

def higher_is_worse(name):
    return any(marker in name for marker in COST_MARKERS)

failures = []
rows = []
for name in sorted(base):
    want_low = higher_is_worse(name)
    b = base[name]
    if name not in cur:
        rows.append((name, b, None, None, "MISSING"))
        failures.append(f"{name}: present in baseline, missing from current run")
        continue
    c = cur[name]
    if b == 0:
        # can't compute a ratio; only fail if a zero-cost series grew
        delta_pct = float("inf") if c != 0 else 0.0
        regressed = want_low and c > 0
    else:
        delta_pct = (c - b) / abs(b) * 100.0
        regressed = delta_pct > tolerance if want_low else delta_pct < -tolerance
    rows.append((name, b, c, delta_pct, "FAIL" if regressed else "ok"))
    if regressed:
        direction = "above" if want_low else "below"
        failures.append(
            f"{name}: {c:g} vs baseline {b:g} ({delta_pct:+.1f}%, "
            f"tolerance {tolerance:g}% {direction})")

new_series = sorted(set(cur) - set(base))

width = max((len(r[0]) for r in rows), default=4)
print(f"bench gate: {len(rows)} series, tolerance {tolerance:g}% (prefix '{prefix}')")
for name, b, c, delta, verdict in rows:
    cur_s = "—" if c is None else f"{c:14.4g}"
    delta_s = "" if delta is None else f"{delta:+8.1f}%"
    print(f"  {name:<{width}}  base {b:14.4g}  cur {cur_s}  {delta_s}  {verdict}")
for name in new_series:
    print(f"  {name:<{width}}  (new series, not in baseline — refresh the baseline to gate it)")

if failures:
    print()
    for f in failures:
        print(f"REGRESSION: {f}")
    sys.exit(1)
print("bench gate: ok")
PYEOF
