#!/usr/bin/env bash
# Run the README's CLI quickstart block, verbatim, so the README cannot
# drift from the actual CLI again.  Blocks are opted in by placing a
# `<!-- readme-smoke -->` marker line immediately before a ```sh fence;
# every such block is extracted and executed with -e in a scratch
# directory (so corpus/ and *.db artifacts don't litter the checkout).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
readme="$repo_root/README.md"

block=$(awk '
  /<!-- readme-smoke -->/ { grab = 1; next }
  grab && /^```sh$/ { inblock = 1; next }
  inblock && /^```$/ { inblock = 0; grab = 0; next }
  inblock { print }
' "$readme")

if [ -z "$block" ]; then
  echo "readme_smoke: no <!-- readme-smoke --> block found in README.md" >&2
  exit 1
fi

echo "=== README quickstart block under test ==="
echo "$block"
echo "=========================================="

(cd "$repo_root" && dune build bin/hopi_cli.exe)
cli="$repo_root/_build/default/bin/hopi_cli.exe"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# fixture referenced by the block's `query --batch` line
cat > queries.txt <<'EOF'
//article//author
//article//title
EOF

# the README spells commands as `dune exec bin/hopi_cli.exe -- ...`; run
# the same binary directly so the block executes in the scratch directory
while IFS= read -r line; do
  [ -z "$line" ] && continue
  cmd=${line//dune exec bin\/hopi_cli.exe --/$cli}
  echo "+ $cmd"
  eval "$cmd"
done <<EOF
$block
EOF

echo "readme_smoke: OK"
