(* The FliX trade-off (the paper's future work, §8): instead of covering
   every element, keep pre/post tree intervals per document and a 2-hop
   cover of just the skeleton graph (link endpoints).  This example builds
   both indexes over the same citation network and compares size, build
   time and query behaviour, then persists the compact index.

   Run with: dune exec examples/hybrid_tradeoff.exe *)

module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi
module Flix = Hopi_flix.Flix
module Dblp = Hopi_workload.Dblp_gen
module Splitmix = Hopi_util.Splitmix
module Timer = Hopi_util.Timer

let () = Hopi_obs.Log_setup.setup ()

let () =
  let c = Dblp.generate (Dblp.default ~n_docs:120) in
  Fmt.pr "collection: %d documents, %d elements, %d links@." (Collection.n_docs c)
    (Collection.n_elements c) (Collection.n_links c);

  let hopi, t_hopi = Timer.time (fun () -> Hopi.create c) in
  let flix, t_flix = Timer.time (fun () -> Flix.build c) in
  let st = Flix.stats flix in
  Fmt.pr "@.full HOPI cover:    %7d entries, built in %a@." (Hopi.size hopi)
    Timer.pp_duration t_hopi;
  Fmt.pr "FliX hybrid:        %7d entries, built in %a@." (Flix.size flix)
    Timer.pp_duration t_flix;
  Fmt.pr "  (skeleton: %d of %d elements are link endpoints)@."
    st.Flix.skeleton_nodes (Collection.n_elements c);

  (* both answer identically *)
  let rng = Splitmix.create 9 in
  let els =
    let acc = ref [] in
    Collection.iter_elements c (fun e -> acc := e :: !acc);
    Array.of_list !acc
  in
  let n = 50_000 in
  let disagreements = ref 0 and positive = ref 0 in
  for _ = 1 to n do
    let u = Splitmix.pick rng els and v = Splitmix.pick rng els in
    let a = Hopi.connected hopi u v and b = Flix.connected flix u v in
    if a then incr positive;
    if a <> b then incr disagreements
  done;
  Fmt.pr "@.%d random reachability queries: %d connected, %d disagreements@." n
    !positive !disagreements;
  assert (!disagreements = 0);

  Fmt.pr "@.the hybrid stores %.1f%% of the full cover's entries.@."
    (100.0 *. float_of_int (Flix.size flix) /. float_of_int (Hopi.size hopi))
