(* Citation search: the paper's motivating scenario — an XML search engine
   evaluating wildcard path queries with relevance ranking over a citation
   network of publications (a DBLP-like collection).

   Shows: index-backed vs naive query evaluation, ontology-similar tags
   (~article), and distance-aware ranking.

   Run with: dune exec examples/citation_search.exe *)

module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi
module Dblp = Hopi_workload.Dblp_gen
module Timer = Hopi_util.Timer
open Hopi_query

let () = Hopi_obs.Log_setup.setup ()

let () =
  let n_docs = 60 in
  Fmt.pr "generating a %d-publication citation network...@." n_docs;
  let c = Dblp.generate (Dblp.default ~n_docs) in
  Fmt.pr "  %d elements, %d citation links (%d pending)@." (Collection.n_elements c)
    (Collection.n_inter_links c) (Collection.pending_links c);

  let idx, build_s = Timer.time (fun () -> Hopi.create c) in
  Fmt.pr "index built in %a: %d cover entries@." Timer.pp_duration build_s
    (Hopi.size idx);

  let run ?(options = Eval.default_options) label q =
    let expr = Path_expr.parse_exn q in
    let fast, t_fast = Timer.time (fun () -> Eval.eval ~options idx expr) in
    let _, t_slow = Timer.time (fun () -> Eval.eval_naive ~options idx expr) in
    Fmt.pr "%-10s %-28s %4d matches  index %a  naive %a@." label q (List.length fast)
      Timer.pp_duration t_fast Timer.pp_duration t_slow;
    fast
  in

  Fmt.pr "@.-- wildcard path queries (index vs naive BFS evaluation) --@.";
  ignore (run "exact" "//article//author");
  ignore (run "exact" "//cite//title");
  ignore (run "child" "/article/authors/author");
  ignore (run "deep" "//citations//cite//author");

  Fmt.pr "@.-- ontology similarity: ~article also matches paper/publication --@.";
  let uncapped = { Eval.default_options with max_results = max_int } in
  let plain = run ~options:uncapped "plain" "//article//title" in
  let similar = run ~options:uncapped "similar" "//~article//~title" in
  Fmt.pr "similarity widened the result set: %d -> %d@." (List.length plain)
    (List.length similar);

  Fmt.pr "@.-- distance-aware ranking: close authors first --@.";
  let options = { Eval.default_options with use_distance = true; max_results = 5 } in
  let ranked = Eval.eval ~options idx (Path_expr.parse_exn "//article//author") in
  List.iteri
    (fun i m ->
      match m.Eval.path with
      | [ article; author ] ->
        Fmt.pr "  #%d score %.3f: article of %s -> author in %s@." (i + 1) m.Eval.score
          (Collection.doc_name c (Collection.doc_of_element c article))
          (Collection.doc_name c (Collection.doc_of_element c author))
      | _ -> ())
    ranked;

  (* The direct children of an article score 1/(1+2)=0.33 (two tree hops);
     authors of cited papers are further away and rank below. *)
  Fmt.pr "@.done.@."
