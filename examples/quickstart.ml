(* Quickstart: build a HOPI index over three small linked XML documents and
   ask reachability questions across document boundaries.

   Run with: dune exec examples/quickstart.exe *)

module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi

let () = Hopi_obs.Log_setup.setup ()

let () =
  (* A tiny bibliographic collection: thesis.xml cites book.xml, which in
     turn references survey.xml.  Documents are plain XML with XLink
     attributes; "#id" fragments address elements by their id attribute. *)
  let c = Collection.create () in
  let add name xml =
    match Collection.add_document_xml c ~name xml with
    | Ok id -> id
    | Error e -> failwith (Format.asprintf "%a" Hopi_xml.Xml_parser.pp_error e)
  in
  let thesis =
    add "thesis.xml"
      {|<thesis id="r">
          <title>Reachability in linked XML</title>
          <author id="a1">Ada</author>
          <related><cite xlink:href="book.xml#r"/></related>
        </thesis>|}
  in
  let _book =
    add "book.xml"
      {|<book id="r">
          <title>Connection Indexes</title>
          <chapter id="c1"><cite xlink:href="survey.xml#sec2"/></chapter>
        </book>|}
  in
  let survey =
    add "survey.xml"
      {|<survey id="r">
          <section id="sec1"><p>intro</p></section>
          <section id="sec2"><p>two-hop covers</p><author id="a2">Edith</author></section>
        </survey>|}
  in

  (* Build the index (partitioning + per-partition 2-hop covers + PSG join). *)
  let idx = Hopi.create c in
  Fmt.pr "Indexed %d documents, %d elements, %d links -> %d cover entries@."
    (Collection.n_docs c) (Collection.n_elements c) (Collection.n_links c)
    (Hopi.size idx);

  (* Reachability across documents: thesis -> book -> survey. *)
  let thesis_root = Collection.doc_root_element c thesis in
  let survey_author =
    List.find
      (fun e -> Collection.doc_of_element c e = survey)
      (Collection.elements_with_tag c "author")
  in
  Fmt.pr "thesis root reaches survey author: %b@."
    (Hopi.connected idx thesis_root survey_author);

  (* Descendants with a tag filter: all authors reachable from the thesis,
     across all links. *)
  let authors = Hopi.descendants_with_tag idx thesis_root "author" in
  Fmt.pr "authors reachable from the thesis: %d@." (List.length authors);

  (* Path queries with wildcards over the linked collection. *)
  let query q =
    let ms = Hopi_query.Eval.eval idx (Hopi_query.Path_expr.parse_exn q) in
    Fmt.pr "%-24s -> %d matches@." q (List.length ms)
  in
  query "//thesis//author";
  query "//cite//section";
  query "//book//*";

  (* Incremental maintenance: removing book.xml cuts the only path. *)
  let book_id = Option.get (Collection.find_doc c "book.xml") in
  let stats = Hopi.remove_document idx book_id in
  Fmt.pr "removed book.xml (separating=%b); thesis still reaches author: %b@."
    stats.Hopi_core.Maintenance.separating
    (Hopi.connected idx thesis_root survey_author);
  assert (Hopi.self_check idx);
  Fmt.pr "index self-check after update: ok@."
