(* Distance-aware indexing (Section 5): build the distance-augmented 2-hop
   cover, persist it into the LIN/LOUT tables of the storage engine, and
   answer MIN(LOUT.DIST + LIN.DIST) queries from the paged index.

   Run with: dune exec examples/distance_ranking.exe *)

module Collection = Hopi_collection.Collection
module Dist_builder = Hopi_twohop.Dist_builder
module Dist_cover = Hopi_twohop.Dist_cover
module Verify = Hopi_twohop.Verify
module Pager = Hopi_storage.Pager
module Cover_store = Hopi_storage.Cover_store
module Dblp = Hopi_workload.Dblp_gen
module Timer = Hopi_util.Timer

let () = Hopi_obs.Log_setup.setup ()

let () =
  let c = Dblp.generate (Dblp.default ~n_docs:60) in
  let g = Collection.element_graph c in
  Fmt.pr "collection: %d elements, %d links@." (Collection.n_elements c)
    (Collection.n_links c);

  (* Build the distance-aware cover (centers restricted to shortest paths,
     initial densities estimated by sampling). *)
  let (cover, stats), t = Timer.time (fun () -> Dist_builder.build g) in
  Fmt.pr "distance cover: %d entries in %a (%d iterations, %d sampled estimates)@."
    (Dist_cover.size cover) Timer.pp_duration t stats.Dist_builder.iterations
    stats.Dist_builder.sampled_nodes;

  (* Exhaustive verification against BFS distances. *)
  let mism = Verify.dist_cover_vs_graph cover g in
  Fmt.pr "verified against BFS: %d mismatches@." (List.length mism);
  assert (mism = []);

  (* Persist into LIN(ID,INID,DIST)/LOUT(ID,OUTID,DIST) with a bounded
     buffer pool, then query through the paged index. *)
  let pager = Pager.create ~pool_pages:64 Pager.Memory in
  let store = Cover_store.create pager in
  Cover_store.load_dist_cover store cover;
  Fmt.pr "stored: %d entries = %d integers on %d pages (%d KiB)@."
    (Cover_store.n_entries store)
    (Cover_store.stored_integers store)
    (Pager.n_pages pager)
    (Pager.size_bytes pager / 1024);

  (* Ranked retrieval: authors by link distance from a publication root. *)
  let docs = List.sort compare (Collection.doc_ids c) in
  let root = Collection.doc_root_element c (List.nth docs (List.length docs - 1)) in
  let authors = Collection.elements_with_tag c "author" in
  let reachable =
    List.filter_map
      (fun a ->
        Option.map (fun d -> (a, d)) (Cover_store.min_distance store root a))
      authors
  in
  let ranked = List.sort (fun (_, d1) (_, d2) -> compare d1 d2) reachable in
  Fmt.pr "@.authors reachable from %s, nearest first:@."
    (Collection.doc_name c (Collection.doc_of_element c root));
  List.iteri
    (fun i (a, d) ->
      if i < 8 then
        Fmt.pr "  distance %2d: author in %s@." d
          (Collection.doc_name c (Collection.doc_of_element c a)))
    ranked;

  let st = Pager.stats pager in
  Fmt.pr "@.buffer pool: %d hits, %d misses, %d evictions@." st.Pager.cache_hits
    st.Pager.cache_misses st.Pager.evictions
