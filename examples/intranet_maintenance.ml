(* Incremental maintenance: a dynamic intranet-like collection where
   documents are continuously added, modified and removed (Section 6 of the
   paper).  The index is never rebuilt; every operation updates the 2-hop
   cover in place, using the fast label-pruning path whenever the removed
   document separates the document-level graph.

   Run with: dune exec examples/intranet_maintenance.exe *)

module Collection = Hopi_collection.Collection
module Hopi = Hopi_core.Hopi
module Maintenance = Hopi_core.Maintenance
module Dblp = Hopi_workload.Dblp_gen
module Splitmix = Hopi_util.Splitmix
module Timer = Hopi_util.Timer

let () = Hopi_obs.Log_setup.setup ()

let () =
  let cfg = Dblp.default ~n_docs:40 in
  let c = Dblp.generate cfg in
  let idx, build_s = Timer.time (fun () -> Hopi.create c) in
  Fmt.pr "initial index: %d docs, %d entries, built in %a@." (Collection.n_docs c)
    (Hopi.size idx) Timer.pp_duration build_s;

  let rng = Splitmix.create 2026 in
  let fast = ref 0 and general = ref 0 in
  let next_doc = ref cfg.Dblp.n_docs in

  for round = 1 to 18 do
    let c = Hopi.collection idx in
    let docs = Array.of_list (List.sort compare (Collection.doc_ids c)) in
    match Splitmix.int rng 3 with
    | 0 ->
      (* a crawler found a new document *)
      let i = !next_doc in
      incr next_doc;
      (match
         Hopi.insert_document_xml idx ~name:(Dblp.doc_name i) (Dblp.document_xml cfg i)
       with
       | Ok _ -> Fmt.pr "%2d: insert %-12s -> %d entries@." round (Dblp.doc_name i) (Hopi.size idx)
       | Error _ -> assert false)
    | 1 ->
      (* a document disappeared *)
      let victim = Splitmix.pick rng docs in
      let name = Collection.doc_name c victim in
      let stats = Hopi.remove_document idx victim in
      if stats.Maintenance.separating then incr fast else incr general;
      Fmt.pr "%2d: delete %-12s (%s, test %a, delete %a)@." round name
        (if stats.Maintenance.separating then "fast path" else "general path")
        Timer.pp_duration stats.Maintenance.test_seconds Timer.pp_duration
        stats.Maintenance.delete_seconds
    | _ ->
      (* a document was edited: diff-based modification applies subtree-level
         inserts and deletes instead of delete + reinsert (Section 6.3) *)
      let victim = Splitmix.pick rng docs in
      let name = Collection.doc_name c victim in
      let replacement =
        Hopi_xml.Xml_parser.parse_string_exn
          {|<article id="r"><title id="t">revised</title><note>edited</note></article>|}
      in
      let stats = Hopi.modify_document_diff idx victim replacement in
      Fmt.pr "%2d: modify %-12s (diff: -%d/+%d subtrees) -> %d entries@." round name
        stats.Maintenance.subtrees_deleted stats.Maintenance.subtrees_inserted
        (Hopi.size idx)
  done;

  Fmt.pr "@.%d deletions used the separating fast path, %d the general path@." !fast
    !general;
  Fmt.pr "final: %d docs, %d entries@."
    (Collection.n_docs (Hopi.collection idx))
    (Hopi.size idx);
  let ok, check_s = Timer.time (fun () -> Hopi.self_check idx) in
  Fmt.pr "exhaustive self-check after 18 updates: %s (%a)@."
    (if ok then "ok" else "FAILED")
    Timer.pp_duration check_s;
  assert ok
