(* hopi — command-line front end.

     hopi gen  --kind dblp --docs 200 --out corpus/   generate a corpus
     hopi build corpus/ --store corpus.db             build + persist + stats
     hopi query corpus/ '//article//author'           evaluate a path query
     hopi query corpus/ --batch queries.txt --jobs 4  batch evaluation
     hopi serve corpus.db --jobs 4 --cache-mb 64      query-serving loop
     hopi serve corpus.db --socket /tmp/hopi.sock     socket front-end
     hopi shard-split corpus/ -k 4 --out shards/      K-shard partitioning
     hopi serve --shard shards/                       scatter-gather serving
     hopi client --socket /tmp/hopi.sock --batch q    drive a running server
     hopi check corpus/                               exhaustive self-check

   See docs/OPERATIONS.md for the full operator guide. *)

module Collection = Hopi_collection.Collection
module Timer = Hopi_util.Timer
open Hopi_core

let load_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
  in
  if files = [] then failwith (Printf.sprintf "no .xml files in %s" dir);
  let c = Collection.create () in
  List.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat dir f) in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      match Collection.add_document_xml c ~name:f src with
      | Ok _ -> ()
      | Error e ->
        failwith (Format.asprintf "%s: %a" f Hopi_xml.Xml_parser.pp_error e))
    files;
  c

let setup_logs verbose = Hopi_obs.Log_setup.setup ~verbose ()

let write_metrics = function
  | None -> ()
  | Some path ->
    Hopi_obs.Export.write_json path;
    Fmt.pr "metrics written to %s@." path

let config_of_flags ?build_mem_mb ?spill_dir partitioner joiner limit jobs =
  let partitioner =
    match partitioner with
    | "whole" -> Config.Whole
    | "single" -> Config.Singleton
    | "random" -> Config.Random_nodes limit
    | "closure" -> Config.Closure_aware limit
    | p -> failwith (Printf.sprintf "unknown partitioner %S" p)
  in
  let joiner =
    match joiner with
    | "psg" -> Config.Psg
    | "incremental" -> Config.Incremental
    | j -> failwith (Printf.sprintf "unknown joiner %S" j)
  in
  { Config.default with partitioner; joiner; jobs; build_mem_mb; spill_dir }

(* {1 gen} *)

let gen kind docs out =
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let write name text =
    let oc = open_out_bin (Filename.concat out name) in
    output_string oc text;
    close_out oc
  in
  (match kind with
   | "dblp" ->
     let cfg = Hopi_workload.Dblp_gen.default ~n_docs:docs in
     for i = 0 to docs - 1 do
       write (Hopi_workload.Dblp_gen.doc_name i) (Hopi_workload.Dblp_gen.document_xml cfg i)
     done
   | "inex" ->
     let cfg = Hopi_workload.Inex_gen.default ~n_docs:docs in
     for i = 0 to docs - 1 do
       write (Hopi_workload.Inex_gen.doc_name i) (Hopi_workload.Inex_gen.document_xml cfg i)
     done
   | k -> failwith (Printf.sprintf "unknown kind %S (dblp|inex)" k));
  Fmt.pr "wrote %d documents to %s@." docs out

(* {1 build} *)

let write_chrome_trace = function
  | None -> ()
  | Some path ->
    Hopi_obs.Chrome.write path;
    Fmt.pr "chrome trace (%d events) written to %s — open in ui.perfetto.dev or chrome://tracing@."
      (Hopi_obs.Chrome.n_events ()) path

let ns_of_ms ms = int_of_float (Float.max 0.0 ms *. 1e6)

let build dir partitioner joiner limit jobs verbose store_path no_fsync metrics_path
    trace_out build_mem_mb spill_dir =
  setup_logs verbose;
  let c = load_dir dir in
  Fmt.pr "collection: %d docs, %d elements, %d links (%d unresolved references)@."
    (Collection.n_docs c) (Collection.n_elements c) (Collection.n_links c)
    (Collection.pending_links c);
  let config = config_of_flags ?build_mem_mb ?spill_dir partitioner joiner limit jobs in
  Fmt.pr "config: %a@." Config.pp config;
  let idx, t = Timer.time (fun () -> Hopi.create ~config c) in
  let r = Hopi.last_build idx in
  if r.Build.spilled_runs > 0 then
    Fmt.pr "external sort: spilled %d runs (%d MiB) to temp files@."
      r.Build.spilled_runs
      (r.Build.spilled_bytes / (1024 * 1024));
  Fmt.pr "built in %a (partition %a, covers %a, join %a)@." Timer.pp_duration t
    Timer.pp_duration r.Build.partition_seconds Timer.pp_duration r.Build.cover_seconds
    Timer.pp_duration r.Build.join_seconds;
  Fmt.pr "cover: %d entries over %d partitions (%d from the join)@." (Hopi.size idx)
    r.Build.partitioning.Hopi_collection.Partitioning.n r.Build.join_entries;
  (match store_path with
   | None -> ()
   | Some path ->
     let pager =
       Hopi_storage.Pager.create ~pool_pages:512 ~fsync:(not no_fsync)
         (Hopi_storage.Pager.File path)
     in
     let store = Hopi.to_store idx pager in
     Hopi_storage.Cover_store.save store;
     Fmt.pr "stored %d LIN/LOUT rows on %d pages in %s@."
       (Hopi_storage.Cover_store.n_entries store)
       (Hopi_storage.Pager.n_pages pager) path;
     Hopi_storage.Pager.close pager);
  write_metrics metrics_path;
  write_chrome_trace trace_out

(* {1 trace} *)

(* Build DIR's index and export the span tree as a Chrome trace — the
   profiling view of the per-phase tables (`build.cover` tasks and the
   `join.psg.*` phases land on their worker domains' lanes). *)
let trace dir partitioner joiner limit jobs verbose chrome_out =
  setup_logs verbose;
  let c = load_dir dir in
  let config = config_of_flags partitioner joiner limit jobs in
  let idx, t = Timer.time (fun () -> Hopi.create ~config c) in
  Fmt.pr "built %d cover entries in %a (jobs %d)@." (Hopi.size idx) Timer.pp_duration t
    jobs;
  write_chrome_trace (Some chrome_out)

(* {1 inspect} *)

let inspect path =
  let pager = Hopi_storage.Pager.open_existing path in
  let store = Hopi_storage.Cover_store.open_pager pager in
  Fmt.pr "%s: %d nodes, %d label entries (%d stored integers) on %d pages (%d KiB)@."
    path
    (Hopi_storage.Cover_store.n_nodes store)
    (Hopi_storage.Cover_store.n_entries store)
    (Hopi_storage.Cover_store.stored_integers store)
    (Hopi_storage.Pager.n_pages pager)
    (Hopi_storage.Pager.size_bytes pager / 1024);
  Hopi_storage.Pager.close pager

(* {1 verify-store} *)

let verify_store path verbose =
  setup_logs verbose;
  let module S = Hopi_storage in
  match S.Pager.open_existing path with
  | exception S.Storage_error.Storage_error e ->
    Fmt.epr "%s: %s@." path (S.Storage_error.to_string e);
    exit 1
  | pager ->
    let bad = S.Pager.verify_pages pager in
    if bad <> [] then begin
      Fmt.pr "%s: CHECKSUM FAILURE on %d of %d page(s): %s@." path (List.length bad)
        (S.Pager.n_pages pager)
        (String.concat ", " (List.map string_of_int bad));
      exit 1
    end;
    let kind =
      match S.Catalog.read pager with
      | cat ->
        (match cat.S.Catalog.kind with S.Catalog.Cover -> "cover" | S.Catalog.Closure -> "closure")
      | exception S.Storage_error.Storage_error e -> (
        (* not an index store: a generation manifest is a pager file too *)
        match S.Manifest.read_file path with
        | m ->
          Printf.sprintf "generation manifest (live %d, previous %d, tip %d)"
            m.S.Manifest.live m.S.Manifest.previous m.S.Manifest.tip
        | exception S.Storage_error.Storage_error _ ->
          Fmt.epr "%s: bad catalog: %s@." path (S.Storage_error.to_string e);
          exit 1)
    in
    Fmt.pr "%s: ok — %s store, %d pages (%d KiB), all checksums verified@." path kind
      (S.Pager.n_pages pager)
      (S.Pager.size_bytes pager / 1024);
    S.Pager.close pager

(* {1 query} *)

let render_element c e =
  Fmt.str "%s:%s" (Collection.doc_name c (Collection.doc_of_element c e))
    (Collection.tag_of c e)

let render_match c m =
  Fmt.str "score %.3f  %s" m.Hopi_query.Eval.score
    (String.concat " -> " (List.map (render_element c) m.Hopi_query.Eval.path))

(* Force the lazily built sub-indexes once, so pool workers only read. *)
let prewarm_for_pool idx ~distance =
  ignore (Hopi.text_index idx);
  if distance then ignore (Hopi.distance_index idx)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let acc = ref [] in
      (try
         while true do
           acc := input_line ic :: !acc
         done
       with End_of_file -> ());
      List.rev !acc)

let query dir expr_str batch_file top distance jobs metrics_path =
  let c = load_dir dir in
  let idx = Hopi.create c in
  let options =
    { Hopi_query.Eval.default_options with max_results = top; use_distance = distance }
  in
  (match (expr_str, batch_file) with
   | Some expr_str, None ->
     let expr = Hopi_query.Path_expr.parse_exn expr_str in
     let matches, t = Timer.time (fun () -> Hopi_query.Eval.eval ~options idx expr) in
     Fmt.pr "%d matches in %a@." (List.length matches) Timer.pp_duration t;
     List.iteri (fun i m -> Fmt.pr "%3d. %s@." (i + 1) (render_match c m)) matches
   | None, Some path ->
     let lines =
       read_lines path
       |> List.filter (fun l ->
              let l = String.trim l in
              l <> "" && not (String.length l > 0 && l.[0] = '#'))
     in
     let exprs =
       Array.of_list (List.map (fun l -> (l, Hopi_query.Path_expr.parse_exn l)) lines)
     in
     prewarm_for_pool idx ~distance:(distance || options.max_distance <> None);
     let answers, t =
       Timer.time (fun () ->
           Hopi_util.Pool.with_pool ~jobs (fun pool ->
               Hopi_util.Pool.map_array pool
                 (fun (_, expr) -> Hopi_query.Eval.eval ~options idx expr)
                 exprs))
     in
     Array.iteri
       (fun i matches ->
         let src, _ = exprs.(i) in
         match matches with
         | [] -> Fmt.pr "%s: 0 matches@." src
         | best :: _ ->
           Fmt.pr "%s: %d matches; top %s@." src (List.length matches)
             (render_match c best))
       answers;
     Fmt.pr "%d expressions in %a (jobs %d)@." (Array.length exprs) Timer.pp_duration t
       jobs
   | Some _, Some _ -> failwith "give either EXPR or --batch FILE, not both"
   | None, None -> failwith "nothing to do: give EXPR or --batch FILE");
  write_metrics metrics_path

(* {1 serve} *)

(* A reader hanging up must surface as EPIPE/[Sys_error] on our write —
   handled as a clean shutdown by the REPL — not kill the process. *)
let ignore_sigpipe () =
  match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *)

(* When the launcher closed fd 0, the first file we open is handed fd 0
   and the input loop would read store pages as commands.  Checked before
   anything is opened; a dead stdin serves an empty session instead. *)
let stdin_usable () =
  match Unix.fstat Unix.stdin with
  | (_ : Unix.stats) -> true
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> false

let slowlog_reply () =
  ignore (Hopi_obs.Slo.update Hopi_obs.Reqtrace.slo);
  String.trim (Fmt.str "%a" Hopi_obs.Reqtrace.pp_slowlog ())

let no_ctx = { Hopi_serve.Batch.conn = 0; queue_wait_ns = 0 }

(* The socket front-end serves the same control commands as the REPL,
   plus [quit] shutting the whole server down. *)
let run_socket_server ~max_inflight ~queue_depth ~socket ~tcp ~eval ~control =
  let module Sv = Hopi_serve.Server in
  let server_cell = ref None in
  let sock_control cmd =
    let cmd = String.trim cmd in
    if cmd = "quit" then begin
      (match !server_cell with Some s -> Sv.request_shutdown s | None -> ());
      Ok "bye"
    end
    else
      match control cmd with
      | Some thunk -> ( try Ok (thunk ()) with e -> Error (Printexc.to_string e))
      | None -> Error (Printf.sprintf "unknown control command %S" cmd)
      | exception e -> Error (Printexc.to_string e)
  in
  let server =
    Sv.create ~max_inflight ~queue_depth { Sv.eval; control = sock_control }
  in
  server_cell := Some server;
  (match socket with
   | None -> ()
   | Some path ->
     ignore (Sv.add_listener server (Sv.Unix_socket path) : Unix.sockaddr);
     Fmt.epr "listening on unix:%s@." path);
  (match tcp with
   | None -> ()
   | Some port -> (
     match Sv.add_listener server (Sv.Tcp ("127.0.0.1", port)) with
     | Unix.ADDR_INET (_, p) -> Fmt.epr "listening on tcp:127.0.0.1:%d@." p
     | _ -> ()));
  let on_signal (_ : int) = Sv.request_shutdown server in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Sv.wait server;
  Sv.stop server;
  Fmt.epr "server stopped: %d connections seen, %d requests served@."
    (Sv.connections_seen server) (Sv.requests_served server)

(* One serving session over an (eval, control) pair: the stdin/stdout
   REPL by default, the socket front-end when --socket/--tcp was given. *)
let drive_session ~stdin_ok ~batch_size ~socket ~tcp ~max_inflight ~queue_depth
    ~eval ~control =
  match (socket, tcp) with
  | None, None ->
    let module R = Hopi_serve.Repl in
    let read_line =
      if stdin_ok then R.stdin_reader ()
      else begin
        Fmt.epr
          "serve: stdin is unavailable; shutting down cleanly (use --socket \
           or --tcp for network serving)@.";
        fun () -> None
      end
    in
    let st =
      R.run ~batch_size ~read_line ~write_line:(R.stdout_writer ())
        ~eval:(fun qs -> snd (eval ~ctx:no_ctx qs))
        ~control ()
    in
    (match st.R.outcome with
     | R.Eof | R.Quit -> ()
     | R.Output_closed reason ->
       (* stdout still buffers bytes the dead pipe will never take; point
          fd 1 at /dev/null so the interpreter's at-exit flush cannot
          re-raise the write error after our clean shutdown *)
       (try
          let dn = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
          Unix.dup2 dn Unix.stdout;
          Unix.close dn
        with Unix.Unix_error _ -> ());
       Fmt.epr "serve: output closed (%s); shutting down cleanly@." reason)
  | _ -> run_socket_server ~max_inflight ~queue_depth ~socket ~tcp ~eval ~control

let configure_reqtrace slow_ms slo_p50_ms slo_p95_ms slo_p99_ms =
  let module Rt = Hopi_obs.Reqtrace in
  (match slow_ms with
   | None -> Rt.disable_slowlog ()
   | Some ms -> Rt.set_slow_threshold_ns (ns_of_ms ms));
  Hopi_obs.Slo.set_targets Rt.slo
    ?p50_ns:(Option.map ns_of_ms slo_p50_ms)
    ?p95_ns:(Option.map ns_of_ms slo_p95_ms)
    ?p99_ns:(Option.map ns_of_ms slo_p99_ms)

(* One line of a [--maintain] churn script: a Generation op, [flip],
   [rollback], or [sleep-ms N] for pacing. *)
let maint_line gen line =
  let module G = Hopi_serve.Generation in
  if line = "flip" then begin
    let st = G.flip gen in
    Ok
      (Fmt.str "generation %d live (%.2f ms, %d dirtied, %d invalidated)"
         st.G.generation
         (float_of_int st.G.duration_ns /. 1e6)
         st.G.dirtied st.G.invalidated)
  end
  else if line = "rollback" then
    Ok (Fmt.str "generation %d live (rolled back)" (G.rollback gen))
  else if String.length line > 9 && String.sub line 0 9 = "sleep-ms " then begin
    match float_of_string_opt (String.sub line 9 (String.length line - 9)) with
    | Some ms when ms >= 0.0 ->
      Unix.sleepf (ms /. 1000.0);
      Ok (Fmt.str "slept %.0f ms" ms)
    | _ -> Error "sleep-ms: not a non-negative number"
  end
  else
    match G.parse_op line with Error _ as e -> e | Ok op -> G.apply gen op

(* Live mode: the store is a generation family; churn is applied through
   Hopi_serve.Generation and flipped in without interrupting serving. *)
let serve_live store_path jobs cache_mb batch_size pool_pages corpus_dir
    metrics_path maintain retain fsync ~stdin_ok ~socket ~tcp ~max_inflight
    ~queue_depth =
  let module Serve = Hopi_serve in
  let module G = Serve.Generation in
  let c = load_dir corpus_dir in
  let idx = Hopi.create c in
  let gen =
    G.create ~pool_pages ~cache_mb ~retain ~fsync ~base:store_path idx
  in
  Fmt.epr
    "serving %s live: generation %d, %d elements; cache %d MiB, jobs %d, \
     batch %d, retain %d@."
    store_path (G.live gen)
    (Collection.n_elements c)
    cache_mb jobs batch_size retain;
  let served = ref 0 in
  let writer =
    match maintain with
    | None -> None
    | Some file ->
      let lines =
        read_lines file
        |> List.map String.trim
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      in
      Fmt.epr "maintain: %d scripted operations from %s@." (List.length lines)
        file;
      Some
        (Domain.spawn (fun () ->
             List.iter
               (fun line ->
                 match maint_line gen line with
                 | Ok msg -> Fmt.epr "maintain: %s@." msg
                 | Error e -> Fmt.epr "maintain: error: %s (%S)@." e line)
               lines))
  in
  Hopi_util.Pool.with_pool ~jobs (fun pool ->
      let eval ~ctx queries =
        (* one snapshot per batch: a batch never straddles a flip *)
        G.with_snapshot gen (fun snap ->
            let answers =
              Serve.Batch.eval_batch_engine ~ctx ~pool
                (Serve.Batch.engine_of_snapshot snap)
                queries
            in
            served := !served + Array.length answers;
            (Serve.Snapshot.epoch snap, answers))
      in
      let control line =
        match line with
        | "stats" ->
          Some
            (fun () ->
              Fmt.str
                "served %d; generation %d (%d pending ops); cache %d \
                 entries, %d bytes of %d"
                !served (G.live gen) (G.pending_ops gen)
                (Serve.Label_cache.entries (G.cache gen))
                (Serve.Label_cache.bytes (G.cache gen))
                (Serve.Label_cache.capacity_bytes (G.cache gen)))
        | "slowlog" -> Some slowlog_reply
        | "gens" ->
          Some
            (fun () ->
              Fmt.str
                "live %d, previous %d, tip %d; %d pending ops, %d \
                 generations open"
                (G.live gen) (G.previous gen) (G.tip gen)
                (G.pending_ops gen) (G.retained gen))
        | "flip" ->
          Some
            (fun () ->
              let st = G.flip gen in
              Fmt.str
                "generation %d live (%.2f ms; %d nodes dirtied, %d cache \
                 entries invalidated%s)"
                st.G.generation
                (float_of_int st.G.duration_ns /. 1e6)
                st.G.dirtied st.G.invalidated
                (if st.G.full_invalidation then "; full invalidation" else ""))
        | "rollback" ->
          Some
            (fun () -> Fmt.str "generation %d live (rolled back)" (G.rollback gen))
        | line when String.length line > 6 && String.sub line 0 6 = "apply " ->
          Some
            (fun () ->
              let rest = String.sub line 6 (String.length line - 6) in
              match G.parse_op rest with
              | Error e -> "error: " ^ e
              | Ok op -> (
                match G.apply gen op with
                | Ok msg -> "ok: " ^ msg
                | Error e -> "error: " ^ e))
        | _ -> None
      in
      drive_session ~stdin_ok ~batch_size ~socket ~tcp ~max_inflight
        ~queue_depth ~eval ~control);
  (match writer with Some d -> Domain.join d | None -> ());
  Fmt.epr "served %d queries; final generation %d of %d@." !served (G.live gen)
    (G.tip gen);
  G.close gen;
  ignore (Hopi_obs.Slo.update Hopi_obs.Reqtrace.slo);
  write_metrics metrics_path

(* Shard mode: STORE is a directory written by [hopi shard-split]; queries
   route through the scatter-gather {!Hopi_serve.Router}. *)
let serve_shard dir jobs cache_mb batch_size pool_pages metrics_path ~stdin_ok
    ~socket ~tcp ~max_inflight ~queue_depth =
  let module Serve = Hopi_serve in
  let router = Serve.Router.open_dir ~pool_pages ~cache_mb dir in
  Fmt.epr
    "serving shard dir %s: %d shards (%s), %d elements, %d label entries; \
     cache %d MiB, jobs %d, batch %d@."
    dir
    (Serve.Router.n_shards router)
    (if Serve.Router.with_dist router then "distance-aware" else "plain")
    (Serve.Router.n_nodes router)
    (Serve.Router.n_entries router)
    cache_mb jobs batch_size;
  let eng = Serve.Router.engine router in
  let served = ref 0 in
  Hopi_util.Pool.with_pool ~jobs (fun pool ->
      let eval ~ctx queries =
        let answers = Serve.Batch.eval_batch_engine ~ctx ~pool eng queries in
        served := !served + Array.length answers;
        (0, answers)
      in
      let control = function
        | "stats" ->
          Some
            (fun () ->
              Fmt.str "served %d; %d shards, %d elements, %d entries" !served
                (Serve.Router.n_shards router)
                (Serve.Router.n_nodes router)
                (Serve.Router.n_entries router))
        | "slowlog" -> Some slowlog_reply
        | _ -> None
      in
      drive_session ~stdin_ok ~batch_size ~socket ~tcp ~max_inflight
        ~queue_depth ~eval ~control);
  Fmt.epr "served %d queries@." !served;
  Serve.Router.close router;
  ignore (Hopi_obs.Slo.update Hopi_obs.Reqtrace.slo);
  write_metrics metrics_path

let serve store_path jobs cache_mb batch_size pool_pages corpus verbose metrics_path
    slow_ms slo_p50_ms slo_p95_ms slo_p99_ms live maintain retain no_fsync shard
    socket tcp max_inflight queue_depth =
  setup_logs verbose;
  let module Serve = Hopi_serve in
  configure_reqtrace slow_ms slo_p50_ms slo_p95_ms slo_p99_ms;
  (* probe stdin before anything is opened (a later open could be handed
     fd 0); SIGPIPE must be ignored before the first answer is written *)
  let stdin_ok = stdin_usable () in
  ignore_sigpipe ();
  if shard then
    serve_shard store_path jobs cache_mb batch_size pool_pages metrics_path
      ~stdin_ok ~socket ~tcp ~max_inflight ~queue_depth
  else if live || maintain <> None then begin
    match corpus with
    | None ->
      failwith
        "--live needs --corpus DIR: the writer index is built from the corpus"
    | Some dir ->
      serve_live store_path jobs cache_mb batch_size pool_pages dir
        metrics_path maintain retain (not no_fsync) ~stdin_ok ~socket ~tcp
        ~max_inflight ~queue_depth
  end
  else begin
  let snap = Serve.Snapshot.open_file ~pool_pages ~cache_mb store_path in
  Fmt.epr "serving %s: %s store, %d nodes, %d entries; cache %d MiB, jobs %d, batch %d@."
    store_path
    (match Serve.Snapshot.kind snap with `Cover -> "cover" | `Closure -> "closure")
    (Serve.Snapshot.n_nodes snap) (Serve.Snapshot.n_entries snap) cache_mb jobs
    batch_size;
  let path_eval =
    match corpus with
    | None -> None
    | Some dir ->
      let c = load_dir dir in
      let idx = Hopi.create c in
      prewarm_for_pool idx ~distance:true;
      Fmt.epr "corpus %s loaded for path queries (%d elements)@." dir
        (Collection.n_elements c);
      Some
        (fun expr_str ->
          match Hopi_query.Path_expr.parse expr_str with
          | Error e -> Error e
          | Ok expr -> (
            match Hopi_query.Eval.eval idx expr with
            | [] -> Ok "0 matches"
            | best :: _ as matches ->
              Ok
                (Fmt.str "%d matches; top %s" (List.length matches)
                   (render_match c best))))
  in
  let eng = Serve.Batch.engine_of_snapshot ?path_eval snap in
  let served = ref 0 in
  Hopi_util.Pool.with_pool ~jobs (fun pool ->
      let eval ~ctx queries =
        let answers = Serve.Batch.eval_batch_engine ~ctx ~pool eng queries in
        served := !served + Array.length answers;
        (Serve.Snapshot.epoch snap, answers)
      in
      let control = function
        | "stats" ->
          Some
            (fun () ->
              Fmt.str "served %d; cache %d entries, %d bytes of %d" !served
                (Serve.Label_cache.entries (Serve.Snapshot.cache snap))
                (Serve.Label_cache.bytes (Serve.Snapshot.cache snap))
                (Serve.Label_cache.capacity_bytes (Serve.Snapshot.cache snap)))
        | "slowlog" -> Some slowlog_reply
        | _ -> None
      in
      drive_session ~stdin_ok ~batch_size ~socket ~tcp ~max_inflight
        ~queue_depth ~eval ~control);
  Fmt.epr "served %d queries@." !served;
  Serve.Snapshot.close snap;
  (* final SLO refresh so the metrics snapshot carries current gauges *)
  ignore (Hopi_obs.Slo.update Hopi_obs.Reqtrace.slo);
  write_metrics metrics_path
  end

(* {1 shard-split} *)

let shard_split dir out k dist no_fsync verbose =
  setup_logs verbose;
  let module Serve = Hopi_serve in
  let c = load_dir dir in
  Fmt.pr "collection: %d docs, %d elements, %d links@." (Collection.n_docs c)
    (Collection.n_elements c) (Collection.n_links c);
  let st, t =
    Timer.time (fun () ->
        Serve.Router.split ~dist ~fsync:(not no_fsync) ~k ~dir:out c)
  in
  Fmt.pr
    "split into %d shards under %s in %a: %d elements, %d label entries, %d \
     cross links, %d PSG closure pairs@."
    st.Serve.Router.shards out Timer.pp_duration t st.Serve.Router.elements
    st.Serve.Router.entries st.Serve.Router.cross_links
    st.Serve.Router.psg_closure;
  Fmt.pr "serve it with: hopi serve --shard %s@." out

(* {1 client} *)

let client socket tcp host batch control_cmd =
  let module Serve = Hopi_serve in
  ignore_sigpipe ();
  let cl =
    match (socket, tcp) with
    | Some path, None -> Serve.Client.connect_unix path
    | None, Some port -> Serve.Client.connect_tcp host port
    | _ -> failwith "connect with exactly one of --socket PATH or --tcp PORT"
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close cl) @@ fun () ->
  let print_reply = function
    | Ok (Serve.Client.Answers (epoch, lines)) ->
      List.iter print_endline lines;
      Fmt.epr "epoch %d, %d answer(s)@." epoch (List.length lines)
    | Ok (Serve.Client.Busy msg) ->
      Fmt.epr "busy: %s@." msg;
      exit 75 (* EX_TEMPFAIL: back off and retry *)
    | Ok (Serve.Client.Refused msg) ->
      Fmt.epr "error: %s@." msg;
      exit 1
    | Error e ->
      Fmt.epr "client: %s@." e;
      exit 1
  in
  match control_cmd with
  | Some cmd -> print_reply (Serve.Client.control cl cmd)
  | None ->
    let raw =
      match batch with
      | Some file -> read_lines file
      | None ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line stdin :: !acc
           done
         with End_of_file -> ());
        List.rev !acc
    in
    let lines =
      raw |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    if lines = [] then
      failwith "no queries: give --batch FILE, --control CMD, or pipe lines";
    print_reply (Serve.Client.request cl lines)

(* {1 slowlog} *)

(* Offline slow-query profiling: run a whole batch file against a stored
   index with the slowlog capturing every query, then print the slowest
   ones with their per-request attribution plus a per-kind latency table.
   [--slow-ms] raises the capture threshold (default 0 = profile all). *)
let slowlog_run store_path batch_file slow_ms jobs cache_mb top verbose =
  setup_logs verbose;
  let module Serve = Hopi_serve in
  let module Rt = Hopi_obs.Reqtrace in
  let lines =
    read_lines batch_file
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let queries, parse_errors =
    List.fold_left
      (fun (qs, errs) line ->
        match Serve.Batch.parse line with
        | Ok q -> (q :: qs, errs)
        | Error e ->
          Fmt.epr "skipping %S: %s@." line e;
          (qs, errs + 1))
      ([], 0) lines
  in
  let queries = Array.of_list (List.rev queries) in
  if Array.length queries = 0 then failwith "no valid queries in the batch file";
  Rt.set_slow_threshold_ns (ns_of_ms slow_ms);
  (* hold every request of this run so "slowest" is global, not newest *)
  Rt.set_slowlog_capacity (Array.length queries);
  Fun.protect
    ~finally:(fun () ->
      Rt.disable_slowlog ();
      Rt.set_slowlog_capacity Rt.default_slowlog_capacity)
  @@ fun () ->
  let snap = Serve.Snapshot.open_file ~cache_mb store_path in
  Fun.protect ~finally:(fun () -> Serve.Snapshot.close snap) @@ fun () ->
  let (_ : Serve.Batch.answer array), t =
    Timer.time (fun () ->
        Hopi_util.Pool.with_pool ~jobs (fun pool ->
            Serve.Batch.eval_batch ~pool snap queries))
  in
  ignore (Hopi_obs.Slo.update Rt.slo);
  Fmt.pr "%d queries in %a (jobs %d, cache %d MiB)%s@." (Array.length queries)
    Timer.pp_duration t jobs cache_mb
    (if parse_errors > 0 then Fmt.str "; %d malformed lines skipped" parse_errors
     else "");
  (* per-kind latency table straight from the registry histograms *)
  let rows =
    List.filter_map
      (fun m ->
        match m with
        | Hopi_obs.Registry.Histogram h ->
          let name = Hopi_obs.Histogram.name h in
          let prefix = "hopi_serve_query_kind_" in
          if String.length name > String.length prefix
             && String.sub name 0 (String.length prefix) = prefix
             && Hopi_obs.Histogram.count h > 0
          then begin
            let kind =
              String.sub name (String.length prefix)
                (String.length name - String.length prefix)
            in
            let kind =
              match String.index_opt kind '_' with
              | Some i -> String.sub kind 0 i
              | None -> kind
            in
            let s = Hopi_obs.Histogram.summary h in
            let us v = Fmt.str "%.1f" (v /. 1e3) in
            Some
              [ kind; string_of_int s.Hopi_util.Stats.n;
                us s.Hopi_util.Stats.p50; us s.Hopi_util.Stats.p95;
                us s.Hopi_util.Stats.p99; us s.Hopi_util.Stats.max ]
          end
          else None
        | _ -> None)
      (Hopi_obs.Registry.metrics ())
  in
  Fmt.pr "@.per-kind latency (this process):@.";
  List.iter
    (fun row -> Fmt.pr "  %s@." (String.concat "  " row))
    ([ "kind"; "count"; "p50us"; "p95us"; "p99us"; "maxus" ] :: rows);
  let slow =
    List.sort (fun a b -> compare b.Rt.latency_ns a.Rt.latency_ns) (Rt.slowlog ())
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  Fmt.pr "@.slowest %d of %d at/over %.3fms:@." (min top (List.length slow))
    (List.length slow) slow_ms;
  List.iter (fun s -> Fmt.pr "%a" Rt.pp_sample s) (take top slow)

(* {1 metrics} *)

let metrics dir format verbose =
  setup_logs verbose;
  (* with a corpus argument, build (and so exercise) the index first so the
     dump reflects a real workload; without one, dump the metric catalog *)
  (match dir with
   | None -> ()
   | Some d ->
     let c = load_dir d in
     let idx = Hopi.create c in
     ignore (Hopi.size idx));
  match format with
  | "human" -> Fmt.pr "%a@." (fun ppf () -> Hopi_obs.Export.pp ppf ()) ()
  | "json" -> print_string (Hopi_obs.Export.to_json ())
  | "prometheus" | "prom" -> print_string (Hopi_obs.Export.prometheus ())
  | f -> failwith (Printf.sprintf "unknown format %S (human|json|prometheus)" f)

(* {1 check} *)

let check dir =
  let c = load_dir dir in
  let idx = Hopi.create c in
  let ok, t = Timer.time (fun () -> Hopi.self_check idx) in
  Fmt.pr "self-check (%d elements, O(n^2) BFS oracle): %s in %a@."
    (Collection.n_elements c)
    (if ok then "ok" else "FAILED")
    Timer.pp_duration t;
  if not ok then exit 1

(* {1 command line} *)

open Cmdliner

let dir_arg = Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR")

let partitioner_arg =
  Arg.(value & opt string "closure" & info [ "partitioner" ] ~docv:"whole|single|random|closure")

let joiner_arg = Arg.(value & opt string "psg" & info [ "joiner" ] ~docv:"psg|incremental")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write a JSON snapshot of all metrics and spans to $(docv).")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the span tree as a Chrome trace-event file to $(docv) \
               (open in ui.perfetto.dev or chrome://tracing).")

let limit_arg =
  let doc = "Partition limit (elements for random, connections for closure)." in
  Arg.(value & opt int 100_000 & info [ "limit" ] ~doc)

let gen_cmd =
  let kind = Arg.(value & opt string "dblp" & info [ "kind" ] ~docv:"dblp|inex") in
  let docs = Arg.(value & opt int 100 & info [ "docs" ]) in
  let out = Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic XML corpus")
    Term.(const gen $ kind $ docs $ out)

let build_cmd =
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE"
           ~doc:"Persist LIN/LOUT tables to this page file.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs"; "domains" ] ~docv:"N"
           ~doc:"Worker domains for the build pool (per-partition covers and \
                 PSG join work; the cover is identical for any value).")
  in
  let no_fsync =
    Arg.(value & flag & info [ "no-fsync" ]
           ~doc:"Skip sync points when persisting with $(b,--store): faster, \
                 still process-crash-safe (journaled), but a power loss may \
                 lose the save.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  let build_mem =
    Arg.(value & opt (some int) None & info [ "build-mem-mb" ] ~docv:"MB"
           ~doc:"Memory budget for the join pipeline's external sort: sorted \
                 runs past the budget spill to $(b,hopi-spill-*) temp files \
                 and are merged back streamingly.  The built index is \
                 byte-identical for every value.")
  in
  let spill_dir =
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR"
           ~doc:"Directory for spill temp files (default: the system temp \
                 directory).")
  in
  Cmd.v (Cmd.info "build" ~doc:"Build the HOPI index and print statistics")
    Term.(const build $ dir_arg $ partitioner_arg $ joiner_arg $ limit_arg
          $ jobs $ verbose $ store $ no_fsync $ metrics_arg $ trace_out_arg
          $ build_mem $ spill_dir)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for batch evaluation (answers are returned in \
               input order for any value).")

let query_cmd =
  let expr = Arg.(value & pos 1 (some string) None & info [] ~docv:"EXPR") in
  let batch =
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Evaluate every path expression in $(docv) (one per line, \
                 $(b,#) comments allowed) on the pool instead of a single \
                 EXPR.")
  in
  let top = Arg.(value & opt int 20 & info [ "top" ]) in
  let distance = Arg.(value & flag & info [ "distance" ] ~doc:"Rank by link distance.") in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a path expression (//a//b, ~tag, *, [predicates])")
    Term.(const query $ dir_arg $ expr $ batch $ top $ distance $ jobs_arg $ metrics_arg)

let serve_cmd =
  (* [some string], not [some file]: in live mode the store (and its
     generation manifest) may not exist yet — Generation.create makes it *)
  let store = Arg.(required & pos 0 (some string) None & info [] ~docv:"STORE") in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for query evaluation.")
  in
  let cache_mb =
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Label-cache budget in MiB; 0 disables caching (every fetch \
                 goes to the page store).")
  in
  let batch =
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"B"
           ~doc:"Group up to $(docv) input lines per evaluation batch \
                 (1 = answer each line immediately; larger values raise \
                 throughput on piped workloads).")
  in
  let pool_pages =
    Arg.(value & opt int 4096 & info [ "pool-pages" ] ~docv:"N"
           ~doc:"Pages of the shared read-only page pool all reader \
                 domains probe (4 KiB each; the default is 16 MiB).")
  in
  let corpus =
    Arg.(value & opt (some dir) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Load this corpus (and build its in-memory index) so \
                 $(b,path EXPR) queries can be served.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  let slow_ms =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Record queries taking at least $(docv) milliseconds into the \
                 slow-query log (0 records every query); dump it with the \
                 $(b,slowlog) input command.")
  in
  let slo_ms which =
    Arg.(value & opt (some float) None
         & info [ Printf.sprintf "slo-%s-ms" which ] ~docv:"MS"
             ~doc:(Printf.sprintf
                     "Latency SLO: target %s of per-query service time, in \
                      milliseconds (published as hopi_slo_serve_query_* gauges)."
                     which))
  in
  let live =
    Arg.(value & flag & info [ "live" ]
           ~doc:"Serve a generation family with online maintenance: the \
                 $(b,apply OP), $(b,flip), $(b,rollback) and $(b,gens) input \
                 commands become available, and STORE names the family base \
                 (created from $(b,--corpus) if absent).  Implied by \
                 $(b,--maintain).")
  in
  let maintain =
    Arg.(value & opt (some file) None & info [ "maintain" ] ~docv:"FILE"
           ~doc:"Run this churn script (maintenance ops plus $(b,flip), \
                 $(b,rollback), $(b,sleep-ms N); one per line, $(b,#) \
                 comments) on a writer domain concurrently with serving.")
  in
  let retain =
    Arg.(value & opt int 2 & info [ "retain" ] ~docv:"N"
           ~doc:"Keep the store files of $(docv) generations beyond the \
                 live/rollback pair on disk before deleting them.")
  in
  let no_fsync =
    Arg.(value & flag & info [ "no-fsync" ]
           ~doc:"Skip sync points when publishing generations: faster flips, \
                 still process-crash-safe (journaled), but a power loss may \
                 lose the newest generation.")
  in
  let shard =
    Arg.(value & flag & info [ "shard" ]
           ~doc:"STORE is a shard directory written by $(b,hopi shard-split); \
                 queries scatter-gather across its K shard stores through \
                 the replicated routing index.")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve the frame protocol on a Unix-domain socket bound at \
                 $(docv) instead of reading stdin (see docs/OPERATIONS.md \
                 for the wire format).")
  in
  let tcp =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Serve the frame protocol on 127.0.0.1:$(docv) (0 picks an \
                 ephemeral port, printed on stderr).  Combines with \
                 $(b,--socket).")
  in
  let max_inflight =
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission control for socket serving: reject requests with \
                 a busy frame once $(docv) are admitted but unanswered \
                 across all connections.")
  in
  let queue_depth =
    Arg.(value & opt int 16 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Bound one socket connection's wait queue at $(docv) \
                 requests; further requests on that connection answer busy.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve reach/dist/desc/anc/path queries over a stored index \
             (line-oriented stdin/stdout loop, or a socket front-end with \
             $(b,--socket)/$(b,--tcp); see docs/OPERATIONS.md), optionally \
             with live generational maintenance ($(b,--live)) or K-shard \
             scatter-gather routing ($(b,--shard))")
    Term.(const serve $ store $ jobs $ cache_mb $ batch $ pool_pages $ corpus
          $ verbose $ metrics_arg $ slow_ms $ slo_ms "p50" $ slo_ms "p95"
          $ slo_ms "p99" $ live $ maintain $ retain $ no_fsync $ shard
          $ socket $ tcp $ max_inflight $ queue_depth)

let shard_split_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Shard directory to write (created if missing): one \
                 $(b,shard-NNN.db) cover store per shard plus the \
                 replicated $(b,routing.idx).")
  in
  let k =
    Arg.(value & opt int 2 & info [ "k"; "shards" ] ~docv:"K"
           ~doc:"Number of shards (clamped to the document count); \
                 documents are balanced greedily by element count.")
  in
  let dist =
    Arg.(value & flag & info [ "dist" ]
           ~doc:"Build distance-aware shard covers so $(b,dist) queries \
                 answer true shortest distances across shards.")
  in
  let no_fsync =
    Arg.(value & flag & info [ "no-fsync" ]
           ~doc:"Skip sync points when writing the shard stores.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  Cmd.v
    (Cmd.info "shard-split"
       ~doc:"Partition a corpus into K shard cover stores plus a replicated \
             cross-link/PSG routing index, servable with $(b,hopi serve \
             --shard)")
    Term.(const shard_split $ dir_arg $ out $ k $ dist $ no_fsync $ verbose)

let client_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Connect to the Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Connect to $(b,--host):$(docv) over TCP.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Dotted address for $(b,--tcp) (default 127.0.0.1).")
  in
  let batch =
    Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Send every query line in $(docv) as one request frame \
                 (default: read the lines from stdin).")
  in
  let control =
    Arg.(value & opt (some string) None & info [ "control" ] ~docv:"CMD"
           ~doc:"Send one control command ($(b,stats), $(b,slowlog), \
                 $(b,quit), ...) instead of queries.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one batch of queries (or a control command) to a running \
             $(b,hopi serve --socket)/$(b,--tcp) server and print the \
             answers; exits 75 on a busy (admission-control) reply")
    Term.(const client $ socket $ tcp $ host $ batch $ control)

let metrics_cmd =
  let dir = Arg.(value & pos 0 (some dir) None & info [] ~docv:"DIR") in
  let format =
    Arg.(value & opt string "human" & info [ "format" ] ~docv:"human|json|prometheus")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Dump the metrics registry (after building DIR's index, if given)")
    Term.(const metrics $ dir $ format $ verbose)

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"Verify the index against BFS reachability")
    Term.(const check $ dir_arg)

let inspect_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "inspect" ~doc:"Print statistics of a stored index file")
    Term.(const inspect $ file)

let trace_cmd =
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the traced build.")
  in
  let chrome =
    Arg.(required & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Output path of the Chrome trace-event JSON.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Build DIR's index and export the span tree as a Chrome trace \
             (profile the build phases visually in Perfetto)")
    Term.(const trace $ dir_arg $ partitioner_arg $ joiner_arg $ limit_arg $ jobs
          $ verbose $ chrome)

let slowlog_cmd =
  let store = Arg.(required & pos 0 (some file) None & info [] ~docv:"STORE") in
  let batch =
    Arg.(required & opt (some file) None & info [ "batch" ] ~docv:"FILE"
           ~doc:"Serve-protocol queries to profile, one per line ($(b,#) \
                 comments allowed).")
  in
  let slow_ms =
    Arg.(value & opt float 0.0 & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Only capture queries at or over $(docv) milliseconds \
                 (default 0: capture everything).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for batch evaluation.")
  in
  let cache_mb =
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB"
           ~doc:"Label-cache budget in MiB; 0 profiles the cold path.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Slow queries to print, slowest first.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress.") in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:"Run a query batch against a stored index and print the slowest \
             queries with per-request cache/label/pager attribution")
    Term.(const slowlog_run $ store $ batch $ slow_ms $ jobs $ cache_mb $ top
          $ verbose)

let verify_store_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log journal recovery.")
  in
  Cmd.v
    (Cmd.info "verify-store"
       ~doc:"Checksum-verify every page of a stored index (recovering a hot \
             journal first); exits 1 on any corruption")
    Term.(const verify_store $ file $ verbose)

let () =
  let doc = "HOPI: a 2-hop-cover connection index for linked XML collections" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "hopi" ~doc)
          [ gen_cmd; build_cmd; query_cmd; serve_cmd; shard_split_cmd; client_cmd;
            check_cmd; inspect_cmd; verify_store_cmd; metrics_cmd; trace_cmd;
            slowlog_cmd ]))
